// The durable run journal (src/svc/journal): append/replay round-trips,
// torn-tail and checksum-corruption truncation, wholesale reset of alien
// files, run-identity determinism, the degradation contract (an unusable
// journal never fails a run), and the pipeline integration — every durable
// obligation verdict lands a journal record at its durability point, so a
// partially-journaled run resumes with only the missing obligations
// re-proved and report bytes identical to a cold run. Runs under TSan in CI
// (the "svc" leg): appends from pipeline workers must be race-free.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "protocols/protocols.h"
#include "svc/journal.h"
#include "svc/proof_cache.h"
#include "util/hash.h"
#include "verify/pipeline.h"

namespace ctaver::svc {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("ctaver_journal_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] fs::path log() const { return path_ / Journal::file_name(); }

 private:
  static int counter_;
  fs::path path_;
};
int TempDir::counter_ = 0;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void append_raw(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::app);
  out << bytes;
}

std::vector<verify::ObligationKey> naive_keys() {
  return verify::obligation_cache_keys(protocols::naive_voting());
}

TEST(Journal, CreatesHeaderAndAppendsSurviveReopen) {
  TempDir dir;
  std::string run;
  {
    Journal j(dir.str());
    ASSERT_TRUE(j.ok()) << j.error();
    EXPECT_TRUE(j.replayed().empty());
    run = journal_run_id(naive_keys());
    j.run_start(run, "verify", "NaiveVoting", 6);
    j.obligation_done(run, "Inv1(v=0)", std::string(64, 'a'), false);
    j.obligation_done(run, "C1", std::string(64, 'b'), true);
    EXPECT_EQ(j.stats().appended, 3u);
    EXPECT_TRUE(j.run_started(run));
    EXPECT_FALSE(j.run_finished(run));
  }
  // Fresh handle: the header line plus three checksummed records replay.
  Journal j2(dir.str());
  ASSERT_TRUE(j2.ok()) << j2.error();
  EXPECT_EQ(j2.stats().replayed, 3u);
  EXPECT_EQ(j2.stats().truncated_bytes, 0u);
  EXPECT_TRUE(j2.run_started(run));
  EXPECT_FALSE(j2.run_finished(run));
  EXPECT_EQ(j2.unfinished_runs(), 1u);
  std::vector<std::string> obls = j2.run_obligations(run);
  ASSERT_EQ(obls.size(), 2u);
  EXPECT_NE(std::find(obls.begin(), obls.end(), std::string(64, 'a')),
            obls.end());
  // Closing the run flips the queries on the NEXT open.
  j2.run_end(run, 1);
  Journal j3(dir.str());
  EXPECT_TRUE(j3.run_finished(run));
  EXPECT_EQ(j3.unfinished_runs(), 0u);
}

TEST(Journal, RecordFormatIsChecksummedOneLineJson) {
  TempDir dir;
  Journal j(dir.str());
  j.run_start("deadbeef", "submit", "P", 2);
  std::string bytes = read_file(dir.log());
  std::istringstream is(bytes);
  std::string header, record;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_EQ(header, "ctaver-journal v1");
  ASSERT_TRUE(std::getline(is, record));
  // <64-hex sha256> <payload>; the checksum vouches for the payload bytes.
  ASSERT_GT(record.size(), 65u);
  EXPECT_EQ(record[64], ' ');
  std::string payload = record.substr(65);
  EXPECT_EQ(record.substr(0, 64), util::sha256_hex(payload));
  Json p = Json::parse(payload);
  EXPECT_EQ(p.get("rec"), "run-start");
  EXPECT_EQ(p.get("run"), "deadbeef");
  EXPECT_EQ(p["total"].as_int(), 2);
}

TEST(Journal, TornTailIsTruncatedAndAppendsContinue) {
  TempDir dir;
  {
    Journal j(dir.str());
    j.run_start("r1", "verify", "P", 1);
    j.obligation_done("r1", "O", std::string(64, 'c'), false);
  }
  const std::string intact = read_file(dir.log());
  // A killed writer leaves a partial record: checksum prefix, no newline.
  append_raw(dir.log(), std::string(40, 'f') + " {\"rec\":\"obl");
  {
    Journal j(dir.str());
    ASSERT_TRUE(j.ok()) << j.error();
    EXPECT_EQ(j.stats().replayed, 2u);
    EXPECT_GT(j.stats().truncated_bytes, 0u);
    EXPECT_EQ(read_file(dir.log()), intact);  // byte-exact rollback
    j.run_end("r1", 0);  // the truncated tail never blocks new appends
  }
  Journal j2(dir.str());
  EXPECT_EQ(j2.stats().replayed, 3u);
  EXPECT_TRUE(j2.run_finished("r1"));
}

TEST(Journal, ChecksumMismatchTruncatesFromTheCorruptRecord) {
  TempDir dir;
  {
    Journal j(dir.str());
    j.run_start("r1", "verify", "P", 2);
    j.obligation_done("r1", "A", std::string(64, 'a'), false);
    j.obligation_done("r1", "B", std::string(64, 'b'), false);
  }
  // Flip one payload byte of the SECOND record; the third is intact but
  // unreachable — recovery must not trust anything past the first bad
  // checksum (the write order is the truth of what happened).
  std::string bytes = read_file(dir.log());
  std::size_t second = bytes.find("\"name\":\"A\"");
  ASSERT_NE(second, std::string::npos);
  bytes[second + 9] = 'Z';  // "A" -> "Z" under the stale checksum
  {
    std::ofstream out(dir.log(), std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  Journal j(dir.str());
  ASSERT_TRUE(j.ok()) << j.error();
  EXPECT_EQ(j.stats().replayed, 1u);  // only run-start survives
  EXPECT_GT(j.stats().truncated_bytes, 0u);
  EXPECT_TRUE(j.run_started("r1"));
  EXPECT_TRUE(j.run_obligations("r1").empty());
}

TEST(Journal, AlienOrFutureVersionFileIsResetWholesale) {
  TempDir dir;
  {
    std::ofstream out(dir.log(), std::ios::binary);
    out << "ctaver-journal v999\nsome future record format\n";
  }
  Journal j(dir.str());
  ASSERT_TRUE(j.ok()) << j.error();
  EXPECT_EQ(j.stats().replayed, 0u);
  EXPECT_GT(j.stats().truncated_bytes, 0u);
  j.run_start("r1", "verify", "P", 1);
  Journal j2(dir.str());
  EXPECT_EQ(j2.stats().replayed, 1u);
  EXPECT_EQ(read_file(dir.log()).rfind("ctaver-journal v1\n", 0), 0u);
}

TEST(Journal, UnusableDirectoryDegradesToNoop) {
  // A regular file where the cache dir should be: open fails, ok() is
  // false, and every append is a no-op returning false — the degradation
  // contract (a run proceeds, just without crash-safety).
  TempDir dir;
  std::string file = dir.str() + "/notadir";
  {
    std::ofstream out(file);
    out << "x";
  }
  Journal j(file);
  EXPECT_FALSE(j.ok());
  EXPECT_FALSE(j.error().empty());
  EXPECT_FALSE(j.append("{\"rec\":\"run-start\"}"));
  j.run_start("r", "verify", "P", 1);  // must not crash
  EXPECT_EQ(j.stats().appended, 0u);
}

TEST(Journal, RunIdIsDeterministicAndKeySensitive) {
  std::vector<verify::ObligationKey> keys = naive_keys();
  EXPECT_EQ(journal_run_id(keys), journal_run_id(keys));
  EXPECT_EQ(journal_run_id(keys).size(), 64u);
  // Any change to the obligation set — name, kind, key bytes, order —
  // names a different run: --resume refuses a mismatched command line.
  std::vector<verify::ObligationKey> renamed = keys;
  renamed[0].name += "x";
  EXPECT_NE(journal_run_id(renamed), journal_run_id(keys));
  std::vector<verify::ObligationKey> rekind = keys;
  rekind[0].parametric = !rekind[0].parametric;
  EXPECT_NE(journal_run_id(rekind), journal_run_id(keys));
  std::vector<verify::ObligationKey> reordered = keys;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(journal_run_id(reordered), journal_run_id(keys));
  std::vector<verify::ObligationKey> shorter(keys.begin(), keys.end() - 1);
  EXPECT_NE(journal_run_id(shorter), journal_run_id(keys));
}

// --- pipeline integration ----------------------------------------------

/// Deterministic report rendering, seconds excluded (the cache-test shape).
std::string render(const verify::ProtocolReport& r) {
  std::ostringstream os;
  for (const verify::PropertyResult* p :
       {&r.agreement, &r.validity, &r.termination}) {
    for (const verify::Obligation& o : p->obligations) {
      os << verify::obligation_line(o) << " ce=[" << o.ce << "] detail=["
         << o.detail << "]\n";
    }
  }
  return os.str();
}

TEST(JournalPipeline, EveryDurableVerdictLandsARecord) {
  protocols::ProtocolModel pm = protocols::naive_voting();
  TempDir dir;
  ProofCache cache(dir.str());
  Journal journal(dir.str());
  ASSERT_TRUE(journal.ok()) << journal.error();
  std::string run = journal_run_id(naive_keys());

  verify::Options opts;
  opts.cache = &cache;
  opts.journal = &journal;
  opts.journal_run = run;
  opts.jobs = 4;  // TSan leg: concurrent durability-point appends
  journal.run_start(run, "verify", pm.name, 6);
  verify::verify_protocol(pm, opts);
  journal.run_end(run, 1);

  Journal replay(dir.str());
  EXPECT_EQ(replay.stats().replayed, 8u);  // start + 6 obligations + end
  EXPECT_TRUE(replay.run_finished(run));
  std::vector<std::string> obls = replay.run_obligations(run);
  EXPECT_EQ(obls.size(), 6u);
  // The journaled keys ARE the proof-cache keys — each one resolves.
  for (const std::string& key : obls) {
    EXPECT_TRUE(cache.lookup(key).has_value()) << key;
  }
  // Warm re-run: hits journal at probe time, with cached=true provenance.
  Journal journal2(dir.str());
  verify::Options warm;
  warm.cache = &cache;
  warm.journal = &journal2;
  warm.journal_run = run;
  journal2.run_start(run, "verify", pm.name, 6);
  verify::verify_protocol(pm, warm);
  journal2.run_end(run, 1);
  Journal replay2(dir.str());
  std::size_t cached_records = 0;
  for (const Json& rec : replay2.replayed()) {
    if (rec.get("rec") == "obligation" && rec["cached"].as_bool()) {
      ++cached_records;
    }
  }
  EXPECT_EQ(cached_records, 6u);
}

TEST(JournalPipeline, PartialDurabilityResumesByteIdentical) {
  // Simulate a crash that left SOME obligations durable: seed the cache
  // with a full run, then surgically delete half the proof entries and
  // journal only the survivors. The "resume" run must re-prove exactly
  // the missing ones and render byte-identically to a cold run.
  protocols::ProtocolModel pm = protocols::naive_voting();
  std::string cold = render(verify::verify_protocol(pm, {}));

  TempDir dir;
  std::vector<verify::ObligationKey> keys = naive_keys();
  std::string run = journal_run_id(keys);
  {
    ProofCache seed(dir.str());
    verify::Options opts;
    opts.cache = &seed;
    verify::verify_protocol(pm, opts);
    // Keep the first three proofs; a crash lost the rest.
    for (std::size_t i = 3; i < keys.size(); ++i) {
      seed.invalidate(keys[i].key);
    }
    Journal j(dir.str());
    j.run_start(run, "verify", pm.name, keys.size());
    for (std::size_t i = 0; i < 3; ++i) {
      j.obligation_done(run, keys[i].name, keys[i].key, false);
    }
    // No run_end: the run is unfinished, exactly like a kill.
  }

  Journal recovered(dir.str());
  EXPECT_EQ(recovered.unfinished_runs(), 1u);
  EXPECT_TRUE(recovered.run_started(run));
  EXPECT_FALSE(recovered.run_finished(run));
  EXPECT_EQ(recovered.run_obligations(run).size(), 3u);

  ProofCache cache(dir.str());
  verify::Options resume;
  resume.cache = &cache;
  resume.journal = &recovered;
  resume.journal_run = run;
  recovered.run_start(run, "verify", pm.name, keys.size());
  verify::ProtocolReport r = verify::verify_protocol(pm, resume);
  recovered.run_end(run, 1);
  EXPECT_EQ(render(r), cold);
  EXPECT_EQ(cache.stats().hits, 3u);    // the durable survivors replayed
  EXPECT_EQ(cache.stats().misses, 3u);  // the lost ones re-proved
  Journal after(dir.str());
  EXPECT_TRUE(after.run_finished(run));
  EXPECT_EQ(after.run_obligations(run).size(), 6u);
  EXPECT_EQ(after.unfinished_runs(), 0u);
}

}  // namespace
}  // namespace ctaver::svc
