// Tests for the schema-based parametric checker: guard analysis, milestone
// enumeration/counting, and end-to-end checks on small systems where the
// expected verdicts are known (naive voting, coin adoption).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "schema/checker.h"
#include "schema/guards.h"
#include "spec/spec.h"
#include "ta/builder.h"
#include "ta/transforms.h"
#include "util/thread_pool.h"

namespace ctaver::schema {
namespace {

using ta::LocId;
using ta::ParamId;
using ta::SystemBuilder;
using ta::VarId;

ta::System naive_voting(bool allow_byzantine) {
  SystemBuilder b(allow_byzantine ? "NaiveVoting" : "NaiveVotingNoFaults");
  ParamId n = b.param("n");
  ParamId f = b.param("f");
  b.require(b.P(n) - b.P(f) * 2, ta::CmpOp::kGt);
  b.require(b.P(f), ta::CmpOp::kGe);
  if (!allow_byzantine) b.require(b.P(f) * -1, ta::CmpOp::kGe);  // f == 0
  b.model_counts(b.P(n) - b.P(f), SystemBuilder::K(0));
  VarId v0 = b.shared("v0");
  VarId v1 = b.shared("v1");
  LocId j0 = b.border("J0", 0), j1 = b.border("J1", 1);
  LocId i0 = b.initial("I0", 0), i1 = b.initial("I1", 1);
  LocId s = b.internal("S");
  LocId d0 = b.final_loc("D0", 0, true), d1 = b.final_loc("D1", 1, true);
  b.border_entry(j0, i0);
  b.border_entry(j1, i1);
  b.rule("r1", i0, s, {}, {{v0, 1}});
  b.rule("r2", i1, s, {}, {{v1, 1}});
  // 2*(v_b + f) >= n + 1
  b.rule("r3", s, d0, {b.ge({{v0, 2}}, b.P("n") - b.P("f") * 2 + b.K(1))});
  b.rule("r4", s, d1, {b.ge({{v1, 2}}, b.P("n") - b.P("f") * 2 + b.K(1))});
  b.round_switch(d0, j0);
  b.round_switch(d1, j1);
  return b.build();
}

ta::System mini_coin_system() {
  SystemBuilder b("MiniCoin");
  ParamId n = b.param("n");
  ParamId f = b.param("f");
  b.require(b.P(n) - b.P(f) * 3, ta::CmpOp::kGt);
  b.require(b.P(f), ta::CmpOp::kGe);
  b.model_counts(b.P(n) - b.P(f), SystemBuilder::K(1));
  VarId cc0 = b.coin_var("cc0");
  VarId cc1 = b.coin_var("cc1");
  LocId j0 = b.border("J0", 0), j1 = b.border("J1", 1);
  LocId i0 = b.initial("I0", 0), i1 = b.initial("I1", 1);
  LocId e0 = b.final_loc("E0", 0), e1 = b.final_loc("E1", 1);
  b.border_entry(j0, i0);
  b.border_entry(j1, i1);
  b.rule("adopt0_from0", i0, e0, {b.coin_is(cc0)});
  b.rule("adopt1_from0", i0, e1, {b.coin_is(cc1)});
  b.rule("adopt0_from1", i1, e0, {b.coin_is(cc0)});
  b.rule("adopt1_from1", i1, e1, {b.coin_is(cc1)});
  b.round_switch(e0, j0);
  b.round_switch(e1, j1);
  LocId j2 = b.coin_border("J2");
  LocId i2 = b.coin_initial("I2");
  LocId n0 = b.coin_internal("N0");
  LocId n1 = b.coin_internal("N1");
  LocId c0 = b.coin_final("C0", 0);
  LocId c1 = b.coin_final("C1", 1);
  b.coin_border_entry(j2, i2);
  b.coin_prob_rule("rb", i2, ta::Distribution::uniform2(n0, n1), {});
  b.coin_rule("rc", n0, c0, {}, {{cc0, 1}});
  b.coin_rule("rd", n1, c1, {}, {{cc1, 1}});
  b.coin_round_switch(c0, j2);
  b.coin_round_switch(c1, j2);
  return b.build();
}

ta::System prepared(const ta::System& sys) {
  return ta::single_round(ta::nonprobabilistic(sys));
}

TEST(GuardAnalysis, NaiveVotingGuards) {
  ta::System rd = prepared(naive_voting(true));
  GuardTable table = analyze_guards(rd, /*prune=*/true);
  ASSERT_EQ(table.num_guards(), 2);
  for (const GuardInfo& g : table.guards) {
    EXPECT_TRUE(g.rising);
    EXPECT_TRUE(g.flippable);
    // Thresholds are provably positive under n > 2f.
    EXPECT_FALSE(g.can_start_true);
    // v0/v1 are incremented by guard-free rules: no precedence.
    EXPECT_TRUE(g.must_follow.empty());
  }
}

TEST(GuardAnalysis, CoinGuardsHaveNoPrerequisites) {
  ta::System rd = prepared(mini_coin_system());
  GuardTable table = analyze_guards(rd, true);
  ASSERT_EQ(table.num_guards(), 2);  // cc0 >= 1, cc1 >= 1
  for (const GuardInfo& g : table.guards) {
    EXPECT_TRUE(g.rising);
    EXPECT_TRUE(g.flippable);  // coin rules rc/rd increment cc0/cc1
    EXPECT_FALSE(g.can_start_true);
  }
}

TEST(SchemaCount, ArrangementTimesCutPositions) {
  // Unpruned: orders {}, (a), (b), (ab), (ba); two unordered cuts give
  // m(m+1) placements per order with m segments.
  ta::System rd = prepared(naive_voting(true));
  spec::Spec inv1 = spec::inv1(rd, 0);
  long long raw = count_schemas(rd, inv1, false, 1'000'000);
  EXPECT_EQ(raw, 2 + 6 + 6 + 12 + 12);
  // Pruned: the two guards gate only zero-update decision rules, so they
  // commute and (b, a) collapses into (a, b).
  long long pruned = count_schemas(rd, inv1, true, 1'000'000);
  EXPECT_EQ(pruned, 2 + 6 + 6 + 12);
  // Single-cut shape: m placements per order.
  spec::Spec inv2 = spec::inv2(rd, 0);
  EXPECT_EQ(count_schemas(rd, inv2, false, 1'000'000), 1 + 2 + 2 + 3 + 3);
  EXPECT_EQ(count_schemas(rd, inv2, true, 1'000'000), 1 + 2 + 2 + 3);
}

TEST(SchemaCount, MilestoneCount) {
  EXPECT_EQ(count_milestones(prepared(naive_voting(true)), true), 2);
  EXPECT_EQ(count_milestones(prepared(mini_coin_system()), true), 2);
}

TEST(CheckSpec, NaiveVotingAgreementFailsWithByzantine) {
  ta::System rd = prepared(naive_voting(true));
  CheckResult res = check_spec(rd, spec::inv1(rd, 0));
  EXPECT_FALSE(res.holds);
  ASSERT_TRUE(res.ce.has_value());
  // Minimal witness: n = 3, t/f = 1 (both thresholds reachable).
  EXPECT_EQ(res.ce->params[0], 3);  // n
  EXPECT_EQ(res.ce->params[1], 1);  // f
  EXPECT_GT(res.nschemas, 0);
}

TEST(CheckSpec, NaiveVotingAgreementHoldsWithoutFaults) {
  ta::System rd = prepared(naive_voting(false));
  CheckResult res = check_spec(rd, spec::inv1(rd, 0));
  EXPECT_TRUE(res.holds);
  EXPECT_TRUE(res.complete);
  CheckResult res1 = check_spec(rd, spec::inv1(rd, 1));
  EXPECT_TRUE(res1.holds);
}

TEST(CheckSpec, NaiveVotingValidityHoldsEvenWithByzantine) {
  ta::System rd = prepared(naive_voting(true));
  for (int v : {0, 1}) {
    CheckResult res = check_spec(rd, spec::inv2(rd, v));
    EXPECT_TRUE(res.holds) << "v=" << v;
    EXPECT_TRUE(res.complete);
  }
}

TEST(CheckSpec, CoinAdoptionAgreementViolatedAcrossCoinValues) {
  // MiniCoin lets different processes read different coin throws only if
  // both cc0 and cc1 are set — impossible with one coin per round, so E0
  // and E1 cannot both be entered... unless processes start with different
  // values? No: everyone adopts the coin. Expect: A(F EX{E0} -> G !EX{E1})
  // holds.
  ta::System rd = prepared(mini_coin_system());
  spec::Spec s;
  s.name = "coin-consistency";
  s.shape = spec::Shape::kEventuallyImpliesGlobally;
  s.premise = spec::LocSet::process({rd.process.find_loc("E0")});
  s.conclusion = spec::LocSet::process({rd.process.find_loc("E1")});
  CheckResult res = check_spec(rd, s);
  EXPECT_TRUE(res.holds);
  EXPECT_TRUE(res.complete);
}

TEST(CheckSpec, EmptyPremiseHoldsVacuously) {
  ta::System rd = prepared(mini_coin_system());
  // No decision locations: Inv1's premise EX{D_v} is empty.
  CheckResult res = check_spec(rd, spec::inv1(rd, 0));
  EXPECT_TRUE(res.holds);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.nschemas, 0);
}

TEST(SharedBudgetTest, ChargeStopsExactlyAtMax) {
  // used() may never exceed max_: the clamp rejects the losing charge
  // instead of letting it push the counter past the cap.
  SharedBudget budget(5, 600.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(budget.charge()) << "i=" << i;
  }
  EXPECT_EQ(budget.used(), 5);
  EXPECT_FALSE(budget.charge());
  EXPECT_EQ(budget.used(), 5);  // the failed charge left no trace
  EXPECT_TRUE(budget.exhausted());
  EXPECT_TRUE(budget.cancel.cancelled());
}

TEST(SharedBudgetTest, OversizedChargeRejectedWholesale) {
  SharedBudget budget(5, 600.0);
  EXPECT_TRUE(budget.charge(3));
  EXPECT_EQ(budget.used(), 3);
  // 3 + 3 > 5: rejected atomically — no partial application, no overshoot
  // — and the rejection trips the shared token (first observer wins).
  EXPECT_FALSE(budget.charge(3));
  EXPECT_EQ(budget.used(), 3);
  EXPECT_TRUE(budget.cancel.cancelled());
}

TEST(SharedBudgetTest, RacingChargesNeverOvershoot) {
  // The old fetch-add let every racing loser add its n before noticing the
  // trip, drifting used() past max_ by up to (threads-1)*n. The
  // compare-exchange clamp admits exactly max_ unit charges, total.
  constexpr long long kMax = 5000;
  SharedBudget budget(kMax, 600.0);
  std::atomic<long long> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      long long mine = 0;
      while (budget.charge()) ++mine;
      successes.fetch_add(mine);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(successes.load(), kMax);
  EXPECT_EQ(budget.used(), kMax);
}

TEST(CheckSpec, BudgetExhaustionIsInconclusive) {
  ta::System rd = prepared(naive_voting(false));
  CheckOptions opts;
  opts.max_schemas = 1;  // way too small to finish
  CheckResult res = check_spec(rd, spec::inv1(rd, 0), opts);
  EXPECT_FALSE(res.complete);
  EXPECT_FALSE(res.holds);  // inconclusive must not report "verified"
}

/// A system built so the premise witness of the gap spec below is
/// syntactically placeable from segment 0 — the L→A hop is unguarded,
/// which is all first_witness_segment's direct-rule scan sees — but
/// LIA-infeasible before the w>=1 guard flips (L is only fed by a gated
/// rule). The conclusion-cut row at early c1 then dies by UNSAT-core
/// embedding after a single solve, which is the surface the core_skip
/// optimization needs. (On the registry protocols the syntactic witness
/// bound already collapses every cut row to length one, so this is where
/// the skip's query reduction is actually observable.)
ta::System witness_gap_system() {
  SystemBuilder b("WitnessGap");
  ParamId n = b.param("n");
  b.require(b.P(n) - b.K(1), ta::CmpOp::kGe);  // n >= 1
  b.model_counts(b.P(n), SystemBuilder::K(0));
  VarId w = b.shared("w");
  LocId j = b.border("J", 0);
  LocId i = b.initial("I", 0);
  LocId l = b.internal("L");
  LocId a = b.internal("A");
  LocId bb = b.internal("B");
  b.border_entry(j, i);
  b.rule("rb", i, bb, {}, {{w, 1}});           // unguarded, drives w
  b.rule("rl", i, l, {b.ge(w, b.K(1))});       // gated: feeds L late
  b.rule("ra", l, a, {});                      // unguarded hop into A
  return b.build();
}

TEST(CheckSpec, CoreSkipCutsQueriesWhereWitnessRowsAreLong) {
  ta::System rd = prepared(witness_gap_system());
  spec::Spec s;
  s.name = "gap";
  s.shape = spec::Shape::kEventuallyImpliesGlobally;
  s.premise = spec::LocSet::process({rd.process.find_loc("A")});
  s.conclusion = spec::LocSet::process({rd.process.find_loc("B")});

  CheckOptions opts;
  opts.workers = 1;
  opts.core_skip = false;
  CheckResult full = check_spec(rd, s, opts);
  opts.core_skip = true;
  CheckResult skip = check_spec(rd, s, opts);

  // Identical verdict, schema charges, and counterexample bytes...
  EXPECT_EQ(full.holds, skip.holds);
  EXPECT_EQ(full.complete, skip.complete);
  EXPECT_EQ(full.nschemas, skip.nschemas);
  ASSERT_EQ(full.ce.has_value(), skip.ce.has_value());
  if (full.ce) {
    EXPECT_EQ(full.ce->text, skip.ce->text);
  }
  // ...while the skip discharges part of the cut row without the solver.
  EXPECT_LT(skip.nqueries, full.nqueries);
  EXPECT_LE(skip.npivots, full.npivots);
}

TEST(CheckSpec, MidSubtreeBudgetCancellationNeverFlipsVerdict) {
  // A budget that dies mid-subtree — at any schema count, under any worker
  // width — may only degrade the result to inconclusive (holds=false,
  // complete=false, no counterexample), never flip it. Verified as a spec
  // that holds: no truncation point may fabricate a counterexample or a
  // premature "verified".
  ta::System rd = prepared(naive_voting(false));
  for (bool static_mode : {false, true}) {
    for (int workers : {1, 4}) {
      for (long long cap : {1LL, 2LL, 3LL, 5LL, 8LL, 13LL, 21LL, 100LL}) {
        CheckOptions opts;
        opts.workers = workers;
        opts.max_schemas = cap;
        opts.static_assignment = static_mode;
        CheckResult res = check_spec(rd, spec::inv1(rd, 0), opts);
        EXPECT_FALSE(res.ce.has_value()) << "cap=" << cap;
        if (res.holds) {
          EXPECT_TRUE(res.complete) << "cap=" << cap;
        } else {
          EXPECT_FALSE(res.complete) << "cap=" << cap;
        }
      }
    }
  }
  // Asynchronous cancellation racing the enumeration workers: same
  // contract, now with the trip landing inside in-flight solver calls
  // (which the solver's cancel poll turns into kUnknown, not a verdict).
  // The race lands differently per dispatch mode — mid-claim (between a
  // cursor fetch and the unit's first level) for the claim index,
  // mid-pass for round-robin — so both modes and a couple of split
  // depths take the same battering.
  for (bool static_mode : {false, true}) {
    for (int depth : {1, 2}) {
      for (int delay_us : {0, 50, 200, 1000, 4000}) {
        SharedBudget budget(1'000'000, 600.0);
        CheckOptions opts;
        opts.workers = 4;
        opts.partition_depth = depth;
        opts.static_assignment = static_mode;
        opts.budget = &budget;
        std::thread killer([&budget, delay_us] {
          std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
          budget.cancel.cancel();
        });
        CheckResult res = check_spec(rd, spec::inv1(rd, 0), opts);
        killer.join();
        const std::string tag = std::string(static_mode ? "static" : "claim") +
                                " depth=" + std::to_string(depth) +
                                " delay=" + std::to_string(delay_us);
        EXPECT_FALSE(res.ce.has_value()) << tag;
        if (res.holds) {
          EXPECT_TRUE(res.complete) << tag;
        }
        // Cancellation may strand units unclaimed, but whatever was
        // attributed must stay internally consistent.
        for (const CheckResult::WorkerStat& w : res.per_worker) {
          EXPECT_GE(w.units, 0) << tag;
          EXPECT_GE(w.pivots, 0) << tag;
        }
      }
    }
  }
  // And on a genuinely violated spec the verdict may be the (canonical)
  // counterexample or inconclusive — but never "holds".
  ta::System bad = prepared(naive_voting(true));
  for (long long cap : {1LL, 3LL, 7LL, 1000LL}) {
    CheckOptions opts;
    opts.workers = 4;
    opts.max_schemas = cap;
    CheckResult res = check_spec(bad, spec::inv1(bad, 0), opts);
    EXPECT_FALSE(res.holds) << "cap=" << cap;
    if (!res.ce.has_value()) {
      EXPECT_FALSE(res.complete) << "cap=" << cap;
    }
  }
}

TEST(CheckSpec, WorkersAndPoolProduceIdenticalResults) {
  // Direct check_spec determinism across worker widths and across the
  // private-threads vs shared-pool dispatch paths (the pipeline's
  // nested-parallelism spill), including the counterexample bytes.
  ta::System rd = prepared(naive_voting(true));
  CheckOptions base;
  base.workers = 1;
  CheckResult ref = check_spec(rd, spec::inv1(rd, 0), base);
  ASSERT_TRUE(ref.ce.has_value());
  for (int workers : {2, 3, 8}) {
    CheckOptions opts;
    opts.workers = workers;
    CheckResult res = check_spec(rd, spec::inv1(rd, 0), opts);
    EXPECT_EQ(res.nschemas, ref.nschemas) << "workers=" << workers;
    EXPECT_EQ(res.nqueries, ref.nqueries) << "workers=" << workers;
    EXPECT_EQ(res.npivots, ref.npivots) << "workers=" << workers;
    ASSERT_TRUE(res.ce.has_value()) << "workers=" << workers;
    EXPECT_EQ(res.ce->text, ref.ce->text) << "workers=" << workers;
    EXPECT_EQ(res.ce->milestones, ref.ce->milestones)
        << "workers=" << workers;
  }
  util::ThreadPool pool(3);
  CheckOptions pooled;
  pooled.workers = 3;
  pooled.pool = &pool;
  CheckResult res = check_spec(rd, spec::inv1(rd, 0), pooled);
  EXPECT_EQ(res.nschemas, ref.nschemas);
  EXPECT_EQ(res.npivots, ref.npivots);
  ASSERT_TRUE(res.ce.has_value());
  EXPECT_EQ(res.ce->text, ref.ce->text);
}

TEST(CheckSpec, ClaimIndexMatchesStaticAssignment) {
  // The dispatch-mode identity half of the determinism contract: the claim
  // index (dynamic placement) and the static round-robin reference produce
  // the same CheckResult bytes — nschemas, nqueries, npivots, CE text — at
  // every workers value, for every partition_depth, on both a violated and
  // a holding spec. Placement only moves units between workers; per-unit
  // work and the canonical merge are placement-independent. The reference
  // is workers=1 at the same depth: the split depth moves warm-solver
  // replay boundaries, so npivots is per-depth deterministic, not
  // depth-invariant.
  for (bool byzantine : {true, false}) {
    ta::System rd = prepared(naive_voting(byzantine));
    for (int depth : {1, 2, 3}) {
      CheckOptions base;
      base.workers = 1;
      base.partition_depth = depth;
      CheckResult ref = check_spec(rd, spec::inv1(rd, 0), base);
      for (int workers : {2, 3, 8}) {
        CheckResult by_mode[2];
        for (bool static_mode : {false, true}) {
          CheckOptions opts;
          opts.workers = workers;
          opts.partition_depth = depth;
          opts.static_assignment = static_mode;
          by_mode[static_mode ? 1 : 0] =
              check_spec(rd, spec::inv1(rd, 0), opts);
        }
        const std::string tag = std::string(byzantine ? "byz" : "clean") +
                                " workers=" + std::to_string(workers) +
                                " depth=" + std::to_string(depth);
        for (const CheckResult& res : by_mode) {
          EXPECT_EQ(res.holds, ref.holds) << tag;
          EXPECT_EQ(res.complete, ref.complete) << tag;
          EXPECT_EQ(res.nschemas, ref.nschemas) << tag;
          EXPECT_EQ(res.nqueries, ref.nqueries) << tag;
          EXPECT_EQ(res.npivots, ref.npivots) << tag;
          ASSERT_EQ(res.ce.has_value(), ref.ce.has_value()) << tag;
          if (ref.ce) {
            EXPECT_EQ(res.ce->text, ref.ce->text) << tag;
            EXPECT_EQ(res.ce->milestones, ref.ce->milestones) << tag;
          }
        }
      }
    }
  }
}

/// max/mean over one field of the per-worker stats; 1.0 = balanced.
double worker_imbalance(const std::vector<CheckResult::WorkerStat>& pw,
                        long long CheckResult::WorkerStat::*field) {
  long long mx = 0, total = 0;
  for (const CheckResult::WorkerStat& s : pw) {
    mx = std::max(mx, s.*field);
    total += s.*field;
  }
  if (pw.empty() || total == 0) return 1.0;
  return static_cast<double>(mx) * static_cast<double>(pw.size()) /
         static_cast<double>(total);
}

/// G commuting rising guards u_g >= 1, each fed by its own unguarded I->S
/// rule and gating its own zero-update S->T_g decision rule. Independence
/// pruning keeps only index-ascending milestone orders, so the depth-1
/// subtree rooted at guard g holds the 2^(G-1-g) orders over the later
/// guards: unit sizes halve along the canonical sibling order. Static
/// round-robin at 2 workers then hands worker 0 the units sized
/// 2^(G-1), 2^(G-3), ... — two thirds of all work, deterministically —
/// which is the shape the claim index exists to re-balance. Z is
/// unreachable, so the two-cut spec premise {T0} -> G !{Z} holds and the
/// enumeration always runs dry (full merge, full per-worker attribution).
ta::System skewed_fan(int nguards) {
  SystemBuilder b("SkewedFan");
  ParamId n = b.param("n");
  b.require(b.P(n) - b.K(1), ta::CmpOp::kGe);  // n >= 1
  b.model_counts(b.P(n), SystemBuilder::K(0));
  LocId j = b.border("J", 0);
  LocId i = b.initial("I", 0);
  LocId s = b.internal("S");
  b.internal("Z");  // no rule enters Z: the holds-spec conclusion
  b.border_entry(j, i);
  for (int g = 0; g < nguards; ++g) {
    const std::string tag = std::to_string(g);
    VarId u = b.shared("u" + tag);
    b.rule("inc" + tag, i, s, {}, {{u, 1}});
    b.rule("dec" + tag, s, b.internal("T" + tag), {b.ge(u, b.K(1))});
  }
  return b.build();
}

TEST(CheckSpec, ClaimIndexBalancesSkewedUnits) {
  ta::System rd = prepared(skewed_fan(6));
  spec::Spec s;
  s.name = "skew";
  s.shape = spec::Shape::kEventuallyImpliesGlobally;
  s.premise = spec::LocSet::process({rd.process.find_loc("T0")});
  s.conclusion = spec::LocSet::process({rd.process.find_loc("Z")});

  CheckOptions base;
  base.workers = 1;
  base.partition_depth = 1;
  CheckResult ref = check_spec(rd, s, base);
  ASSERT_TRUE(ref.holds);
  ASSERT_TRUE(ref.complete);

  // Static round-robin: the assignment is fixed and per-unit work is
  // placement-independent, so the skew is structural — the same per-worker
  // pivot split every run, no scheduler can fix it. Worker 0 owns the
  // units sized 32, 8, 2 by order count (about two thirds of the work;
  // warm-solver replay compresses that to ~1.19 in pivots).
  CheckOptions st = base;
  st.workers = 2;
  st.static_assignment = true;
  CheckResult stat = check_spec(rd, s, st);
  EXPECT_EQ(stat.npivots, ref.npivots);
  EXPECT_EQ(stat.nschemas, ref.nschemas);
  ASSERT_EQ(stat.per_worker.size(), 2u);
  EXPECT_EQ(stat.per_worker[0].units, 3);  // round-robin: 3 units each
  EXPECT_EQ(stat.per_worker[1].units, 3);
  const double static_imb =
      worker_imbalance(stat.per_worker, &CheckResult::WorkerStat::pivots);
  EXPECT_GT(static_imb, 1.15) << "skew construction lost its skew";
  CheckResult stat2 = check_spec(rd, s, st);
  ASSERT_EQ(stat2.per_worker.size(), 2u);
  for (int w = 0; w < 2; ++w) {
    EXPECT_EQ(stat2.per_worker[w].units, stat.per_worker[w].units);
    EXPECT_EQ(stat2.per_worker[w].pivots, stat.per_worker[w].pivots);
  }

  // Claim index: a worker holds at most one unfinished unit, so the worker
  // stuck on the giant first unit stops accumulating siblings and the
  // other drains the queue. The realized placement depends on OS
  // scheduling — on a single hardware thread it degenerates to
  // {unit 0 | everything else} — so the tight ≤1.3 balance bound is
  // asserted on the real protocols in BENCH_solver.json, and here we
  // assert what holds under any schedule: byte identity, full attribution
  // (every unit claimed exactly once), and the busiest worker bounded
  // strictly away from starvation (2.0 with two slots) within a few
  // attempts.
  bool bounded = false;
  double best = 1e9;
  for (int attempt = 0; attempt < 8 && !bounded; ++attempt) {
    CheckOptions cl = base;
    cl.workers = 2;
    CheckResult res = check_spec(rd, s, cl);
    EXPECT_EQ(res.npivots, ref.npivots);
    EXPECT_EQ(res.nschemas, ref.nschemas);
    EXPECT_EQ(res.nqueries, ref.nqueries);
    ASSERT_EQ(res.per_worker.size(), 2u);
    // No CE, no budget trip: every unit is claimed exactly once, and the
    // attributed pivots add up to the whole partitioned tree.
    EXPECT_EQ(res.per_worker[0].units + res.per_worker[1].units, 6);
    EXPECT_EQ(res.per_worker[0].pivots + res.per_worker[1].pivots,
              stat.per_worker[0].pivots + stat.per_worker[1].pivots);
    const double imb =
        worker_imbalance(res.per_worker, &CheckResult::WorkerStat::pivots);
    best = std::min(best, imb);
    bounded = imb <= 1.5;
  }
  EXPECT_TRUE(bounded) << "claim-index busiest worker never dropped below "
                          "1.5x the mean; best attempt "
                       << best;
}

TEST(CheckSpec, UnprunedEnumerationStillSound) {
  ta::System rd = prepared(naive_voting(true));
  CheckOptions opts;
  opts.prune = false;
  CheckResult res = check_spec(rd, spec::inv1(rd, 0), opts);
  EXPECT_FALSE(res.holds);
  ASSERT_TRUE(res.ce.has_value());
  EXPECT_EQ(res.ce->params[0], 3);
}

}  // namespace
}  // namespace ctaver::schema
