// Unit tests for the threshold-automata core: builder, validation,
// non-probabilistic projection (Def. 1), single-round construction (Def. 3)
// and the Fig.-6 binding refinement.
#include <gtest/gtest.h>

#include "ta/builder.h"
#include "ta/model.h"
#include "ta/transforms.h"
#include "ta/validate.h"

namespace ctaver::ta {
namespace {

// Naive voting (paper Fig. 2/3) wrapped in the round structure, no coin.
System naive_voting() {
  SystemBuilder b("NaiveVoting");
  ParamId n = b.param("n");
  ParamId f = b.param("f");
  b.require(b.P(n) - b.P(f) * 2, CmpOp::kGt);  // n > 2f
  b.require(b.P(f), CmpOp::kGe);               // f >= 0
  b.model_counts(b.P(n) - b.P(f), SystemBuilder::K(0));

  VarId v0 = b.shared("v0");
  VarId v1 = b.shared("v1");

  LocId j0 = b.border("J0", 0), j1 = b.border("J1", 1);
  LocId i0 = b.initial("I0", 0), i1 = b.initial("I1", 1);
  LocId s = b.internal("S");
  LocId d0 = b.final_loc("D0", 0, /*decision=*/true);
  LocId d1 = b.final_loc("D1", 1, /*decision=*/true);

  b.border_entry(j0, i0);
  b.border_entry(j1, i1);
  b.rule("r1", i0, s, {}, {{v0, 1}});
  b.rule("r2", i1, s, {}, {{v1, 1}});
  // 2*(v_b + f) >= n + 1   <=>   2*v_b >= n + 1 - 2f
  b.rule("r3", s, d0, {b.ge({{v0, 2}}, b.P("n") - b.P("f") * 2 + b.K(1))});
  b.rule("r4", s, d1, {b.ge({{v1, 2}}, b.P("n") - b.P("f") * 2 + b.K(1))});
  b.round_switch(d0, j0);
  b.round_switch(d1, j1);
  return b.build();
}

// A minimal coin-flipping system: one process location pair waiting on the
// coin, one coin automaton as in Fig. 4(b).
System mini_coin_system() {
  SystemBuilder b("MiniCoin");
  ParamId n = b.param("n");
  ParamId f = b.param("f");
  b.require(b.P(n) - b.P(f) * 3, CmpOp::kGt);
  b.model_counts(b.P(n) - b.P(f), SystemBuilder::K(1));

  VarId cc0 = b.coin_var("cc0");
  VarId cc1 = b.coin_var("cc1");

  LocId j0 = b.border("J0", 0), j1 = b.border("J1", 1);
  LocId i0 = b.initial("I0", 0), i1 = b.initial("I1", 1);
  LocId e0 = b.final_loc("E0", 0), e1 = b.final_loc("E1", 1);
  b.border_entry(j0, i0);
  b.border_entry(j1, i1);
  // Adopt the coin outcome regardless of the starting value.
  b.rule("adopt0_from0", i0, e0, {b.coin_is(cc0)});
  b.rule("adopt1_from0", i0, e1, {b.coin_is(cc1)});
  b.rule("adopt0_from1", i1, e0, {b.coin_is(cc0)});
  b.rule("adopt1_from1", i1, e1, {b.coin_is(cc1)});
  b.round_switch(e0, j0);
  b.round_switch(e1, j1);

  LocId j2 = b.coin_border("J2");
  LocId i2 = b.coin_initial("I2");
  LocId n0 = b.coin_internal("N0");
  LocId n1 = b.coin_internal("N1");
  LocId c0 = b.coin_final("C0", 0);
  LocId c1 = b.coin_final("C1", 1);
  b.coin_border_entry(j2, i2);
  b.coin_prob_rule("rb", i2, Distribution::uniform2(n0, n1), {});
  b.coin_rule("rc", n0, c0, {}, {{cc0, 1}});
  b.coin_rule("rd", n1, c1, {}, {{cc1, 1}});
  b.coin_round_switch(c0, j2);
  b.coin_round_switch(c1, j2);
  return b.build();
}

TEST(Builder, NaiveVotingIsValid) {
  System sys = naive_voting();
  EXPECT_TRUE(validate(sys).empty());
  EXPECT_EQ(sys.total_locations(), 7u);
  EXPECT_EQ(sys.total_rules(), 8u);
  EXPECT_EQ(sys.process.decisions(0).size(), 1u);
  EXPECT_EQ(sys.process.decisions(1).size(), 1u);
  EXPECT_EQ(sys.process.find_loc("S"), 4);
  EXPECT_THROW((void)sys.process.find_loc("nope"), std::out_of_range);
}

TEST(Builder, MiniCoinIsValid) {
  System sys = mini_coin_system();
  EXPECT_TRUE(validate(sys).empty());
  EXPECT_EQ(sys.coin.locations.size(), 6u);
  // rb is the only non-Dirac rule.
  int non_dirac = 0;
  for (const auto& r : sys.coin.rules) non_dirac += r.is_dirac() ? 0 : 1;
  EXPECT_EQ(non_dirac, 1);
}

TEST(Builder, CoinGuardClassification) {
  System sys = mini_coin_system();
  VarId cc0 = sys.find_var("cc0");
  EXPECT_TRUE(sys.is_coin_guard(Guard::coin_is(cc0)));
  const Rule& adopt = sys.process.rules[static_cast<std::size_t>(
      sys.process.find_rule("adopt0_from0"))];
  EXPECT_TRUE(sys.is_coin_based(adopt));
  const Rule& entry = sys.process.rules[static_cast<std::size_t>(
      sys.process.find_rule("enter_I0"))];
  EXPECT_FALSE(sys.is_coin_based(entry));
}

TEST(Environment, Admissibility) {
  System sys = naive_voting();
  EXPECT_TRUE(sys.env.admissible({4, 1}));   // n=4 > 2f=2
  EXPECT_FALSE(sys.env.admissible({4, 2}));  // n=4 == 2f
  EXPECT_FALSE(sys.env.admissible({0, 0}));  // no processes
  EXPECT_FALSE(sys.env.admissible({4}));     // arity mismatch
}

TEST(Validate, RejectsProbabilisticProcessRule) {
  SystemBuilder b("Bad");
  ParamId n = b.param("n");
  b.model_counts(b.P(n), SystemBuilder::K(0));
  LocId j0 = b.border("J0", 0), j1 = b.border("J1", 1);
  LocId i0 = b.initial("I0", 0), i1 = b.initial("I1", 1);
  LocId e0 = b.final_loc("E0", 0), e1 = b.final_loc("E1", 1);
  b.border_entry(j0, i0);
  b.border_entry(j1, i1);
  b.rule("ok0", i0, e0, {});
  b.rule("ok1", i1, e1, {});
  b.round_switch(e0, j0);
  b.round_switch(e1, j1);
  System sys = b.peek();
  sys.env.num_processes = ParamExpr::param(n);
  // Force a probabilistic process rule behind the builder's back.
  sys.process.rules[2].to = Distribution::uniform2(e0, e1);
  sys.process.rules[2].update.resize(sys.vars.size(), 0);
  auto errors = validate(sys);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("must be Dirac"), std::string::npos);
}

TEST(Validate, RejectsNonCanonicalCycle) {
  SystemBuilder b("Cyclic");
  ParamId n = b.param("n");
  b.model_counts(b.P(n), SystemBuilder::K(0));
  VarId x = b.shared("x");
  LocId j0 = b.border("J0", 0), j1 = b.border("J1", 1);
  LocId i0 = b.initial("I0", 0), i1 = b.initial("I1", 1);
  LocId s = b.internal("S");
  LocId e0 = b.final_loc("E0", 0), e1 = b.final_loc("E1", 1);
  b.border_entry(j0, i0);
  b.border_entry(j1, i1);
  b.rule("go0", i0, s, {});
  b.rule("go1", i1, s, {});
  b.rule("self", s, s, {}, {{x, 1}});  // nonzero update on a cycle
  b.rule("out0", s, e0, {});
  b.rule("out1", s, e1, {});
  b.round_switch(e0, j0);
  b.round_switch(e1, j1);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Validate, RejectsNegativeUpdate) {
  SystemBuilder b("Neg");
  ParamId n = b.param("n");
  b.model_counts(b.P(n), SystemBuilder::K(0));
  VarId x = b.shared("x");
  LocId j0 = b.border("J0", 0), j1 = b.border("J1", 1);
  LocId i0 = b.initial("I0", 0), i1 = b.initial("I1", 1);
  LocId e0 = b.final_loc("E0", 0), e1 = b.final_loc("E1", 1);
  b.border_entry(j0, i0);
  b.border_entry(j1, i1);
  b.rule("dec", i0, e0, {}, {{x, -1}});
  b.rule("ok", i1, e1, {});
  b.round_switch(e0, j0);
  b.round_switch(e1, j1);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Validate, RejectsCoinRuleTouchingSharedVars) {
  SystemBuilder b("CoinShared");
  ParamId n = b.param("n");
  b.model_counts(b.P(n), SystemBuilder::K(1));
  VarId x = b.shared("x");
  LocId j0 = b.border("J0", 0), j1 = b.border("J1", 1);
  LocId i0 = b.initial("I0", 0), i1 = b.initial("I1", 1);
  LocId e0 = b.final_loc("E0", 0), e1 = b.final_loc("E1", 1);
  b.border_entry(j0, i0);
  b.border_entry(j1, i1);
  b.rule("a", i0, e0, {});
  b.rule("c", i1, e1, {});
  b.round_switch(e0, j0);
  b.round_switch(e1, j1);
  LocId j2 = b.coin_border("J2");
  LocId i2 = b.coin_initial("I2");
  LocId c0 = b.coin_final("C0");
  b.coin_border_entry(j2, i2);
  b.coin_rule("bad", i2, c0, {}, {{x, 1}});  // coin rule bumps shared var
  b.coin_round_switch(c0, j2);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Transforms, NonprobabilisticSplitsToss) {
  System sys = mini_coin_system();
  System np = nonprobabilistic(sys);
  // rb (1 rule, 2 outcomes) becomes rb#0, rb#1.
  EXPECT_EQ(np.coin.rules.size(), sys.coin.rules.size() + 1);
  for (const Rule& r : np.coin.rules) EXPECT_TRUE(r.is_dirac());
  EXPECT_NO_THROW((void)np.coin.find_rule("rb#0"));
  EXPECT_NO_THROW((void)np.coin.find_rule("rb#1"));
  // Process side untouched.
  EXPECT_EQ(np.process.rules.size(), sys.process.rules.size());
}

TEST(Transforms, SingleRoundConstruction) {
  System sys = naive_voting();
  System rd = single_round(sys);
  // Two border copies J0', J1' appear.
  EXPECT_EQ(rd.process.locations.size(), sys.process.locations.size() + 2);
  LocId j0p = rd.process.find_loc("J0'");
  EXPECT_EQ(rd.process.locations[static_cast<std::size_t>(j0p)].role,
            LocRole::kBorderCopy);
  // Round-switch rules now target the copies.
  for (const Rule& r : rd.process.rules) {
    if (!r.is_round_switch) continue;
    LocRole role =
        rd.process.locations[static_cast<std::size_t>(r.to.dirac_target())]
            .role;
    EXPECT_EQ(role, LocRole::kBorderCopy);
  }
  // Self loops at copies; +2 rules.
  EXPECT_EQ(rd.process.rules.size(), sys.process.rules.size() + 2);
  // The single-round premise of Theorem 2 holds.
  EXPECT_TRUE(validate_single_round(rd).empty());
}

TEST(Transforms, SingleRoundOfMultiRoundLoopFailsNowhere) {
  System rd = single_round(mini_coin_system());
  EXPECT_TRUE(validate_single_round(rd).empty());
  // The multi-round original is NOT a DAG (rounds loop).
  EXPECT_FALSE(validate_single_round(mini_coin_system()).empty());
}

TEST(Transforms, RefineBindingSplitsRule) {
  // Build a tiny system with an M⊥-style rule and refine it.
  SystemBuilder b("Refine");
  ParamId n = b.param("n");
  ParamId t = b.param("t");
  ParamId f = b.param("f");
  b.require(b.P(n) - b.P(t) * 3, CmpOp::kGt);
  b.model_counts(b.P(n) - b.P(f), SystemBuilder::K(0));
  VarId m0 = b.shared("m0");
  VarId m1 = b.shared("m1");
  LocId j0 = b.border("J0", 0), j1 = b.border("J1", 1);
  LocId i0 = b.initial("I0", 0), i1 = b.initial("I1", 1);
  LocId s = b.internal("S");
  LocId mb = b.internal("Mbot");
  LocId e0 = b.final_loc("E0", 0), e1 = b.final_loc("E1", 1);
  b.border_entry(j0, i0);
  b.border_entry(j1, i1);
  b.rule("send0", i0, s, {}, {{m0, 1}});
  b.rule("send1", i1, s, {}, {{m1, 1}});
  b.rule("r3", s, mb,
         {b.ge({{m0, 1}, {m1, 1}}, b.P("n") - b.P("t") - b.P("f"))});
  b.rule("out0", mb, e0, {});
  b.rule("out1", mb, e1, {});
  b.round_switch(e0, j0);
  b.round_switch(e1, j1);
  System sys = b.build();

  System refined = refine_binding(sys, "r3", m0, m1);
  EXPECT_EQ(refined.process.locations.size(),
            sys.process.locations.size() + 3);
  // r3 replaced by three split rules + three exits = net +5 rules.
  EXPECT_EQ(refined.process.rules.size(), sys.process.rules.size() + 5);
  EXPECT_THROW((void)refined.process.find_rule("r3"), std::out_of_range);
  RuleId ra = refined.process.find_rule("r3_A");
  const Rule& rule_a = refined.process.rules[static_cast<std::size_t>(ra)];
  // Guard = original phi plus m0 >= 1.
  ASSERT_EQ(rule_a.guards.size(), 2u);
  EXPECT_EQ(rule_a.guards[1].lhs.size(), 1u);
  EXPECT_EQ(rule_a.guards[1].lhs[0].first, m0);
  // The C branch demands m0 = 0 and m1 = 0 via falling guards.
  RuleId rc = refined.process.find_rule("r3_C");
  const Rule& rule_c = refined.process.rules[static_cast<std::size_t>(rc)];
  ASSERT_EQ(rule_c.guards.size(), 3u);
  EXPECT_EQ(rule_c.guards[1].rel, GuardRel::kLt);
  EXPECT_EQ(rule_c.guards[2].rel, GuardRel::kLt);
}

TEST(Transforms, RefineBindingRejectsUpdatingRule) {
  System sys = naive_voting();
  VarId v0 = sys.find_var("v0");
  VarId v1 = sys.find_var("v1");
  EXPECT_THROW((void)refine_binding(sys, "r1", v0, v1),
               std::invalid_argument);
}

TEST(Transforms, DotExportMentionsEverything) {
  System sys = mini_coin_system();
  std::string dot = to_dot(sys);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("TA_n"), std::string::npos);
  EXPECT_NE(dot.find("PTA_c"), std::string::npos);
  EXPECT_NE(dot.find("1/2"), std::string::npos);  // coin toss probability
}

TEST(Guards, EvalAndPrint) {
  System sys = naive_voting();
  const Rule& r3 =
      sys.process.rules[static_cast<std::size_t>(sys.process.find_rule("r3"))];
  ASSERT_EQ(r3.guards.size(), 1u);
  // n=4, f=1: guard 2*v0 >= 3 is false for v0=1, true for v0=2.
  EXPECT_FALSE(r3.guards[0].eval({1, 0}, {4, 1}));
  EXPECT_TRUE(r3.guards[0].eval({2, 0}, {4, 1}));
  std::string s = r3.guards[0].str(sys.vars, sys.env.params);
  EXPECT_NE(s.find("v0"), std::string::npos);
  EXPECT_NE(s.find(">="), std::string::npos);
}

TEST(ParamExpr, Algebra) {
  ParamExpr e = ParamExpr::param(0, 2) - ParamExpr::param(1, 1);
  e = e + ParamExpr::constant_expr(3);
  EXPECT_EQ(e.eval({5, 4}), 2 * 5 - 4 + 3);
  ParamExpr scaled = e * -2;
  EXPECT_EQ(scaled.eval({5, 4}), -18);
  EXPECT_EQ(e.coeff(7), 0);
}

}  // namespace
}  // namespace ctaver::ta
