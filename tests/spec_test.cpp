// Tests for the specification layer: builders, shorthand printing, and the
// location sets the named conditions select.
#include <gtest/gtest.h>

#include "protocols/protocols.h"
#include "spec/spec.h"
#include "ta/transforms.h"

namespace ctaver::spec {
namespace {

ta::System cc85a_rd() {
  return ta::single_round(
      ta::nonprobabilistic(protocols::cc85a().system));
}

TEST(Spec, Inv1SelectsDecisionsAndOppositeFinals) {
  ta::System rd = cc85a_rd();
  Spec s = inv1(rd, 0);
  EXPECT_EQ(s.shape, Shape::kEventuallyImpliesGlobally);
  ASSERT_EQ(s.premise.locs.size(), 1u);
  EXPECT_EQ(rd.process.locations[static_cast<std::size_t>(
                                     s.premise.locs[0].second)]
                .name,
            "D0");
  // Conclusion: all value-1 finals (E1 and D1).
  EXPECT_EQ(s.conclusion.locs.size(), 2u);
}

TEST(Spec, Inv2PremiseIncludesBorders) {
  ta::System rd = cc85a_rd();
  Spec s = inv2(rd, 1);
  EXPECT_EQ(s.shape, Shape::kInitialImpliesGlobally);
  // I1 and J1 must both be empty at the round start.
  std::vector<std::string> names;
  for (const auto& [coin, l] : s.premise.locs) {
    EXPECT_FALSE(coin);
    names.push_back(
        rd.process.locations[static_cast<std::size_t>(l)].name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "I1"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "J1"), names.end());
}

TEST(Spec, C2IsInv2AtOppositeValue) {
  ta::System rd = cc85a_rd();
  Spec c2v0 = c2(rd, 0);
  Spec inv2v1 = inv2(rd, 1);
  EXPECT_EQ(c2v0.premise.locs, inv2v1.premise.locs);
  EXPECT_EQ(c2v0.conclusion.locs, inv2v1.conclusion.locs);
}

TEST(Spec, BindingUsesNamedLocations) {
  protocols::ProtocolModel pm = protocols::aby22();
  ta::System rd = ta::single_round(ta::nonprobabilistic(pm.system));
  Spec s = binding(rd, "CB2", pm.n0_loc, pm.m1_loc);
  EXPECT_EQ(s.premise.locs.size(), 1u);
  EXPECT_EQ(s.conclusion.locs.size(), 1u);
  EXPECT_THROW(binding(rd, "x", "NoSuchLoc", pm.m1_loc), std::out_of_range);
}

TEST(Spec, Printing) {
  ta::System rd = cc85a_rd();
  EXPECT_EQ(inv1(rd, 0).str(rd),
            "Inv1(v=0): A( F EX{D0} -> G !EX{E1,D1} )");
  EXPECT_EQ(inv2(rd, 0).str(rd),
            "Inv2(v=0): A( init-zero{I0,J0} -> G !EX{E0,D0} )");
  LocSet empty;
  EXPECT_EQ(empty.str(rd), "{}");
}

}  // namespace
}  // namespace ctaver::spec
