// Unit tests for exact rational arithmetic (src/util/rational.h).
#include "util/rational.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ctaver::util {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r.str(), "0");
}

TEST(Rational, CanonicalForm) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ((a + b), Rational(5, 6));
  EXPECT_EQ((a - b), Rational(1, 6));
  EXPECT_EQ((a * b), Rational(1, 6));
  EXPECT_EQ((a / b), Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0, 1), std::domain_error);
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
  EXPECT_GE(Rational(3), Rational(3));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, Frac) {
  EXPECT_EQ(Rational(7, 2).frac(), Rational(1, 2));
  EXPECT_EQ(Rational(-7, 2).frac(), Rational(1, 2));
  EXPECT_TRUE(Rational(5).frac().is_zero());
}

TEST(Rational, Printing) {
  std::ostringstream os;
  os << Rational(-3, 7);
  EXPECT_EQ(os.str(), "-3/7");
  EXPECT_EQ(Rational(42).str(), "42");
}

TEST(Rational, Int128Printing) {
  Int128 big = Int128(1'000'000'000'000'000'000LL) * 1000;
  EXPECT_EQ(int128_str(big), "1000000000000000000000");
  EXPECT_EQ(int128_str(-big), "-1000000000000000000000");
  EXPECT_EQ(int128_str(0), "0");
}

TEST(Rational, Gcd) {
  EXPECT_EQ(gcd128(12, 18), 6);
  EXPECT_EQ(gcd128(-12, 18), 6);
  EXPECT_EQ(gcd128(0, 7), 7);
  EXPECT_EQ(gcd128(7, 0), 7);
}

TEST(Rational, LargeValuesStayExact) {
  Rational big(Int128(1) << 80, 3);
  Rational sum = big + big + big;
  EXPECT_TRUE(sum.is_integer());
  EXPECT_EQ(sum.num(), Int128(1) << 80);
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-5).to_double(), -5.0);
}

// --- overflow paths near the Int128 limits ---------------------------------

constexpr Int128 kInt128Max = ~(Int128(1) << 127);
constexpr Int128 kInt128Min = Int128(1) << 127;

TEST(Rational, CheckedAddNearLimits) {
  EXPECT_EQ(checked_add(kInt128Max, 0), kInt128Max);
  EXPECT_EQ(checked_add(kInt128Max - 1, 1), kInt128Max);
  EXPECT_EQ(checked_add(kInt128Min, kInt128Max), Int128(-1));
  EXPECT_THROW(checked_add(kInt128Max, 1), std::overflow_error);
  EXPECT_THROW(checked_add(kInt128Min, -1), std::overflow_error);
  EXPECT_THROW(checked_add(kInt128Min, kInt128Min), std::overflow_error);
}

TEST(Rational, CheckedMulNearLimits) {
  EXPECT_EQ(checked_mul(kInt128Max, 1), kInt128Max);
  EXPECT_EQ(checked_mul(kInt128Min, 1), kInt128Min);
  EXPECT_EQ(checked_mul(kInt128Max / 2, 2), kInt128Max - 1);
  EXPECT_EQ(checked_mul(0, kInt128Max), Int128(0));
  EXPECT_THROW(checked_mul(kInt128Max, 2), std::overflow_error);
  EXPECT_THROW(checked_mul(kInt128Max / 2 + 1, 2), std::overflow_error);
  // -INT128_MIN is not representable.
  EXPECT_THROW(checked_mul(kInt128Min, -1), std::overflow_error);
  EXPECT_THROW(checked_mul(Int128(1) << 64, Int128(1) << 64),
               std::overflow_error);
}

TEST(Rational, ArithmeticOverflowThrows) {
  Rational huge(kInt128Max, 1);
  EXPECT_THROW(huge + Rational(1), std::overflow_error);
  EXPECT_THROW(huge * Rational(2), std::overflow_error);
  // Denominators multiply in +: 1/p + 1/q with huge coprime p, q overflows.
  Rational a(1, kInt128Max), b(1, kInt128Max - 1);
  EXPECT_THROW(a + b, std::overflow_error);
}

// --- int64 fast path: exactness across the 64-bit boundary -----------------
//
// The arithmetic operators take hardware-width shortcuts whenever both
// operands fit in int64; these tests pin the boundary where the shortcut
// must hand over to the Int128 path without losing exactness.

constexpr long long kI64Max = 9'223'372'036'854'775'807LL;
constexpr long long kI64Min = -kI64Max - 1;

TEST(Rational, Int64BoundaryAddition) {
  // INT64_MAX + 1 leaves the fast path; the result must be exact Int128.
  Rational r = Rational(kI64Max) + Rational(1);
  EXPECT_EQ(r.num(), Int128(kI64Max) + 1);
  EXPECT_EQ(r.den(), 1);
  EXPECT_EQ(r.str(), "9223372036854775808");
  Rational s = Rational(kI64Min) + Rational(-1);
  EXPECT_EQ(s.num(), Int128(kI64Min) - 1);
  // And adding values already past the boundary keeps working.
  Rational t = r + r;
  EXPECT_EQ(t.num(), (Int128(kI64Max) + 1) * 2);
}

TEST(Rational, Int64BoundaryMultiplication) {
  // INT64_MAX * INT64_MAX overflows int64 by far but is exact in Int128.
  Rational r = Rational(kI64Max) * Rational(kI64Max);
  EXPECT_EQ(r.num(), Int128(kI64Max) * Int128(kI64Max));
  EXPECT_EQ(r.den(), 1);
  Rational s = Rational(kI64Min) * Rational(kI64Min);
  EXPECT_EQ(s.num(), Int128(kI64Min) * Int128(kI64Min));
}

TEST(Rational, Int64BoundaryComparison) {
  // Cross-multiplication products straddle the 64-bit boundary.
  Rational a(kI64Max, 2);
  Rational b(kI64Max - 1, 2);
  EXPECT_LT(b, a);
  EXPECT_GT(a, b);
  Rational c(Int128(kI64Max) * 3, 5);  // (3/5)·M
  Rational d(Int128(kI64Max) * 2, 3);  // (2/3)·M  >  (3/5)·M
  EXPECT_LT(c, d);
  EXPECT_LT(Rational(kI64Min), Rational(kI64Max));
}

TEST(Rational, Int64BoundaryGcdReduction) {
  // gcd crossing the fast path: operands just past int64 range.
  Int128 big = Int128(kI64Max) + 1;            // 2^63
  EXPECT_EQ(gcd128(big, 2), 2);
  EXPECT_EQ(gcd128(big * 3, big), big);
  EXPECT_EQ(gcd128(Int128(kI64Min), 2), 2);    // |INT64_MIN| handled
  EXPECT_EQ(gcd128(Int128(kI64Min), Int128(kI64Min)), -Int128(kI64Min));
  Rational r(big * 6, big * 4);                // reduces to 3/2 beyond 64 bits
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, GcdInt64MinWithMinusOneDoesNotTrap) {
  // Regression: INT64_MIN alongside -1 must not reach the 64-bit Euclid,
  // whose INT64_MIN % -1 step would trap. All four orderings are defined.
  EXPECT_EQ(gcd128(Int128(-1), Int128(kI64Min)), 1);
  EXPECT_EQ(gcd128(Int128(kI64Min), Int128(-1)), 1);
  EXPECT_EQ(gcd128(Int128(1), Int128(kI64Min)), 1);
  EXPECT_EQ(gcd128(Int128(kI64Min), Int128(3)), 1);
  EXPECT_EQ(gcd128(Int128(kI64Min), Int128(-4)), 4);
}

TEST(Rational, MixedWidthSums) {
  // A same-denominator sum whose numerator crosses the boundary, then
  // shrinks back into range: canonical form must hold at every step.
  Rational a(kI64Max, 7);
  Rational b(5, 7);
  Rational c = a + b;  // (INT64_MAX + 5) / 7; 9223372036854775812/7 reduces?
  EXPECT_EQ(c.num() * 1, Int128(kI64Max) + 5);
  EXPECT_EQ(c.den(), 7);
  Rational d = c - a;
  EXPECT_EQ(d, b);
}

TEST(Rational, Int128MinPrinting) {
  EXPECT_EQ(int128_str(kInt128Min),
            "-170141183460469231731687303715884105728");
  EXPECT_EQ(int128_str(kInt128Max),
            "170141183460469231731687303715884105727");
  EXPECT_EQ(Rational(kInt128Min, 1).str(),
            "-170141183460469231731687303715884105728");
}

}  // namespace
}  // namespace ctaver::util
