// Example: replay the Sect.-II adaptive-adversary attack on the executable
// MMR14 protocol, round by round, and show that the same adversary is
// powerless against Miller18 (the CONF-phase fix).
#include <iostream>

#include "sim/attack.h"
#include "sim/simulation.h"

int main() {
  using namespace ctaver::sim;

  std::cout << "=== MMR14 under the adaptive adversary (n=4, t=1, "
               "inputs {0,0,1}) ===\n";
  for (int rounds : {1, 2, 4, 8, 16, 32}) {
    AttackResult res = run_attack(Protocol::kMmr14, rounds);
    std::cout << "  horizon " << rounds << " rounds: completed "
              << res.rounds_executed << ", decided: "
              << (res.any_decided ? "yes" : "no") << "\n";
  }
  std::cout << "The adversary freezes one majority holder, drives the other "
               "two processes to\nvalues = {0,1} (forcing est := coin s, "
               "which reveals s), then steers the frozen\nprocess to "
               "values = {1-s}. Every round ends as it began: two against "
               "one.\n\n";

  std::cout << "=== The same adversary against Miller18 ===\n";
  AttackResult fixed = run_attack(Protocol::kMiller18, 16);
  std::cout << "  script blocked: " << (fixed.script_failed ? "yes" : "no")
            << " (binding: the coin is unrevealed when the adversary needs "
               "it)\n  processes decided: "
            << (fixed.any_decided ? "yes" : "no") << "\n\n";

  std::cout << "=== Fair scheduling: everyone terminates quickly ===\n";
  for (auto [proto, name] : {std::pair{Protocol::kMmr14, "MMR14"},
                             std::pair{Protocol::kMiller18, "Miller18"},
                             std::pair{Protocol::kAby22, "ABY22"}}) {
    Simulation::Setup setup;
    setup.proto = proto;
    setup.n = 4;
    setup.t = 1;
    setup.inputs = {0, 0, 1};
    setup.coin_seed = 42;
    RandomRunResult res = run_random(setup, 7, 64);
    std::cout << "  " << name << ": decided=" << res.all_decided
              << " value=" << res.decision_value << " rounds=" << res.rounds
              << " messages=" << res.messages << "\n";
  }
  return 0;
}
