// Example: reproduce the paper's headline result — MMR14 satisfies the
// agreement and validity round invariants, but the binding sufficient
// condition (CB2) fails on the refined model, reproducing the adaptive
// attack of Miller's bug report. The counterexample schedule is printed.
#include <iostream>

#include "protocols/protocols.h"
#include "schema/checker.h"
#include "spec/spec.h"
#include "ta/transforms.h"

int main() {
  using namespace ctaver;

  protocols::ProtocolModel pm = protocols::mmr14();
  ta::System rd = ta::single_round(ta::nonprobabilistic(pm.system));
  ta::System rdr = ta::single_round(ta::nonprobabilistic(pm.refined()));

  schema::CheckOptions opts;
  opts.time_budget_s = 300.0;

  std::cout << "MMR14: |L|=" << pm.system.total_locations()
            << " |R|=" << pm.system.total_rules() << "\n\n";

  for (int v : {0, 1}) {
    schema::CheckResult agr = schema::check_spec(rd, spec::inv1(rd, v), opts);
    std::cout << "Inv1(v=" << v << "): "
              << (agr.holds ? "verified" : "CE") << " (" << agr.nschemas
              << " schemas)\n";
  }
  for (int v : {0, 1}) {
    schema::CheckResult val = schema::check_spec(rd, spec::inv2(rd, v), opts);
    std::cout << "Inv2(v=" << v << "): "
              << (val.holds ? "verified" : "CE") << " (" << val.nschemas
              << " schemas)\n";
  }

  std::cout << "\nBinding conditions on the refined model (Fig. 6):\n";
  struct CB {
    const char* name;
    const char* from;
    const char* forbid;
  };
  for (const CB& cb : {CB{"CB0", "M0", "M1"}, CB{"CB1", "M1", "M0"},
                       CB{"CB2", "N0", "M1"}, CB{"CB3", "N1", "M0"}}) {
    spec::Spec s = spec::binding(rdr, cb.name, cb.from, cb.forbid);
    schema::CheckResult res = schema::check_spec(rdr, s, opts);
    std::cout << cb.name << ": " << (res.holds ? "verified" : "VIOLATED")
              << " (" << res.nschemas << " schemas, " << res.seconds
              << "s)\n";
    if (res.ce) {
      std::cout << "  counterexample (the adaptive attack):\n  milestones:";
      for (const std::string& m : res.ce->milestones) {
        std::cout << " [" << m << "]";
      }
      std::cout << "\n  " << res.ce->text << "\n";
      std::cout << "  (the paper's ByMC run reported the same violation "
                   "with n=193, t=64; any admissible valuation of the "
                   "schema witnesses it)\n";
    }
  }
  return 0;
}
