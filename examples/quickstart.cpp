// Quickstart: model a protocol as a threshold automaton, run the parametric
// checker, and read the verdicts.
//
// We model the naive voting protocol of the paper's Fig. 2/3 — decide v
// after seeing (n+1)/2 votes for v — and check agreement and validity for
// *all* admissible parameters at once. With Byzantine faults admitted
// (n > 2f), agreement breaks and the checker produces a concrete
// counterexample; with f = 0 it verifies.
#include <iostream>

#include "protocols/protocols.h"
#include "schema/checker.h"
#include "spec/spec.h"
#include "ta/builder.h"
#include "ta/transforms.h"

int main() {
  using namespace ctaver;

  // 1. A protocol model. See src/protocols/protocols_ab.cpp for how this is
  //    built with ta::SystemBuilder (locations, threshold guards, rules).
  protocols::ProtocolModel pm = protocols::naive_voting();
  std::cout << "Protocol " << pm.system.name << ": "
            << pm.system.total_locations() << " locations, "
            << pm.system.total_rules() << " rules\n";

  // 2. Reduce to the single-round system (Def. 3; and Def. 1 if the model
  //    had probabilistic coin rules).
  ta::System rd = ta::single_round(ta::nonprobabilistic(pm.system));

  // 3. Check the round invariants underlying Agreement and Validity.
  for (int v : {0, 1}) {
    spec::Spec inv1 = spec::inv1(rd, v);
    schema::CheckResult res = schema::check_spec(rd, inv1);
    std::cout << inv1.str(rd) << "\n  -> "
              << (res.holds ? "verified" : "counterexample") << " ("
              << res.nschemas << " schemas, " << res.seconds << "s)\n";
    if (res.ce) {
      std::cout << "  milestones:";
      for (const std::string& m : res.ce->milestones) std::cout << " [" << m << "]";
      std::cout << "\n  " << res.ce->text << "\n";
    }
  }
  for (int v : {0, 1}) {
    spec::Spec inv2 = spec::inv2(rd, v);
    schema::CheckResult res = schema::check_spec(rd, inv2);
    std::cout << inv2.str(rd) << "\n  -> "
              << (res.holds ? "verified" : "counterexample") << "\n";
  }

  std::cout << "\nAgreement fails because one Byzantine vote can complete "
               "both majorities;\nre-run with f = 0 (see "
               "tests/schema_checker_test.cpp) and it verifies.\n";
  return 0;
}
