// Example: run the full verification pipeline on the paper's benchmark of
// eight common-coin randomized consensus protocols and print a Table-II
// style summary. MMR14 is expected to fail the binding condition (CB2) with
// a concrete counterexample reproducing the adaptive-adversary attack.
//
// Usage: verify_all [--fast]
//   --fast  lower schema budgets (for smoke tests)
#include <cstring>
#include <iostream>

#include "protocols/protocols.h"
#include "verify/pipeline.h"

int main(int argc, char** argv) {
  using namespace ctaver;

  verify::Options opts;
  opts.schema.time_budget_s = 600.0;
  opts.schema.max_schemas = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      opts.schema.time_budget_s = 60.0;
      opts.schema.max_schemas = 200'000;
    }
  }

  std::cout << verify::table2_header() << "\n";
  for (const protocols::ProtocolModel& pm : protocols::all_protocols()) {
    verify::ProtocolReport report = verify::verify_protocol(pm, opts);
    std::cout << verify::table2_row(report) << "\n";
    std::string fail = report.termination.failure();
    if (!fail.empty()) {
      std::cout << "    attack found -> " << fail << "\n";
    }
    std::cout.flush();
  }
  return 0;
}
